module Tech = Archspec.Technology
module Arch = Archspec.Arch
module Link = Archspec.Link
module Level = Mapspace.Level

type breakdown = {
  mac_energy : float;
  register_energy : float;
  sram_energy : float;
  dram_energy : float;
}

type t = {
  arch : Arch.t;
  counts : Counts.t;
  energy_pj : float;
  energy_per_mac : float;
  breakdown : breakdown;
  compute_cycles : float;
  sram_cycles : float;
  dram_cycles : float;
  comm : Link.occupancy list;
  binding : string;
  cycles : float;
  ipc : float;
}

let check_capacities arch counts =
  let reg = Counts.reg_words_per_pe counts in
  let sram = Counts.sram_words_used counts in
  let pes = counts.Counts.pes_used in
  if reg > float_of_int arch.Arch.registers_per_pe then
    Error
      (Printf.sprintf "register tile needs %g words, PE has %d" reg
         arch.Arch.registers_per_pe)
  else if sram > float_of_int arch.Arch.sram_words then
    Error (Printf.sprintf "SRAM tile needs %g words, SRAM has %d" sram arch.Arch.sram_words)
  else if pes > arch.Arch.pe_count then
    Error (Printf.sprintf "mapping uses %d PEs, architecture has %d" pes arch.Arch.pe_count)
  else Ok ()

(* Per-level, per-direction link occupancies (DESIGN §16), in the
   canonical channel order: dram-rd, dram-wr, noc-rd, noc-wr, then the
   per-PE register operand stream.  Burst counts quantize each copy of
   the schedule to whole bursts; the register path has no burst
   structure and streams fractionally.  The timed refsim re-derives the
   same totals by literally walking the copy schedule and aggregates
   them through the same {!Link} helpers, so uncontended answers agree
   bit-for-bit. *)
let comm_channels tech counts =
  let links = tech.Tech.links in
  let bursts ?rw_only ~level link =
    Counts.boundary_bursts ?rw_only counts ~level
      ~burst_words:link.Link.burst_words
  in
  let dram = Level.dram_temporal_level and noc = Level.pe_temporal_level in
  let shared =
    [
      Link.occupancy "dram-rd" links.Link.dram
        ~words:(Counts.dram_to_sram counts)
        ~bursts:(bursts ~level:dram links.Link.dram);
      Link.occupancy "dram-wr" links.Link.dram
        ~words:(Counts.sram_to_dram counts)
        ~bursts:(bursts ~rw_only:true ~level:dram links.Link.dram);
      Link.occupancy "noc-rd" links.Link.noc
        ~words:(Counts.sram_to_reg counts)
        ~bursts:(bursts ~level:noc links.Link.noc);
      Link.occupancy "noc-wr" links.Link.noc
        ~words:(Counts.reg_to_sram counts)
        ~bursts:(bursts ~rw_only:true ~level:noc links.Link.noc);
    ]
  in
  let reg =
    Link.stream_occupancy "reg" links.Link.reg
      ~words:(4.0 *. counts.Counts.macs /. float_of_int counts.Counts.pes_used)
  in
  (shared, reg)

let evaluate ?(comm = Link.Overlapped) ?(contention = false) tech arch nest
    mapping =
  match Counts.compute nest mapping with
  | Error _ as e -> e
  | Ok counts -> begin
    match check_capacities arch counts with
    | Error _ as e -> e
    | Ok () ->
      let eps_r = Arch.register_energy tech arch in
      let eps_s = Arch.sram_energy tech arch in
      let eps_d = tech.Tech.energy_dram in
      let macs = counts.Counts.macs in
      let s2r = Counts.sram_to_reg counts in
      let r2s = Counts.reg_to_sram counts in
      let d2s = Counts.dram_to_sram counts in
      let s2d = Counts.sram_to_dram counts in
      let mac_energy = ((4.0 *. eps_r) +. tech.Tech.energy_mac) *. macs in
      let register_energy = eps_r *. (s2r +. r2s) in
      let sram_energy = eps_s *. (s2r +. r2s +. d2s +. s2d) in
      let dram_energy = eps_d *. (d2s +. s2d) in
      let energy_pj = mac_energy +. register_energy +. sram_energy +. dram_energy in
      let compute_cycles = macs /. float_of_int counts.Counts.pes_used in
      let sram_cycles = (s2r +. r2s +. d2s +. s2d) /. tech.Tech.sram_bandwidth in
      let dram_cycles = (d2s +. s2d) /. tech.Tech.dram_bandwidth in
      let comm_occs, cycles, binding =
        match comm with
        | Link.Overlapped ->
          let cycles =
            Float.max compute_cycles (Float.max sram_cycles dram_cycles)
          in
          let binding =
            Link.binding
              [
                ("compute", compute_cycles);
                ("sram", sram_cycles);
                ("dram", dram_cycles);
              ]
          in
          ([], cycles, binding)
        | Link.Comm_aware ->
          let shared, reg = comm_channels tech counts in
          let cycles, binding =
            Link.comm_cycles ~contention ~compute:compute_cycles ~shared ~reg
          in
          (shared @ [ reg ], cycles, binding)
      in
      (* Degenerate nests (overflowed trip-count products, zero-trip
         mappings) would otherwise produce NaN/inf records through the
         [energy / macs] and [macs / cycles] divisions below. *)
      if not (Float.is_finite macs && macs > 0.0) then
        Error (Printf.sprintf "degenerate nest: MAC count %g is not finite and positive" macs)
      else if not (Float.is_finite cycles && cycles > 0.0) then
        Error (Printf.sprintf "degenerate nest: cycle count %g is not finite and positive" cycles)
      else if not (Float.is_finite energy_pj) then
        Error (Printf.sprintf "degenerate nest: energy %g is not finite" energy_pj)
      else
        Ok
          {
            arch;
            counts;
            energy_pj;
            energy_per_mac = energy_pj /. macs;
            breakdown = { mac_energy; register_energy; sram_energy; dram_energy };
            compute_cycles;
            sram_cycles;
            dram_cycles;
            comm = comm_occs;
            binding;
            cycles;
            ipc = macs /. cycles;
          }
  end

let energy t = t.energy_pj

let ipc t = t.ipc

let pp ppf t =
  Format.fprintf ppf
    "@[<v>energy %.4g pJ (%.3f pJ/MAC): mac %.3g, reg %.3g, sram %.3g, dram %.3g@,\
     cycles %.4g (compute %.4g, sram %.4g, dram %.4g), IPC %.2f, PEs %d"
    t.energy_pj t.energy_per_mac t.breakdown.mac_energy t.breakdown.register_energy
    t.breakdown.sram_energy t.breakdown.dram_energy t.cycles t.compute_cycles
    t.sram_cycles t.dram_cycles t.ipc t.counts.Counts.pes_used;
  (* Communication-aware runs append the per-link breakdown; overlapped
     output stays byte-identical to the pre-communication-model report. *)
  if t.comm <> [] then begin
    Format.fprintf ppf "@,links:";
    List.iter
      (fun (o : Link.occupancy) ->
        Format.fprintf ppf " %s %.4g cyc (%g w, %g bursts)" o.Link.chan
          o.Link.busy o.Link.words o.Link.bursts)
      t.comm;
    Format.fprintf ppf "@,binding: %s" t.binding
  end;
  Format.fprintf ppf "@]"
