module M = Symexpr.Monomial
module P = Symexpr.Posynomial

let pass = "discipline"

let check ?provenance problem =
  let diags = ref [] in
  let emit mk ?constraint_name fmt =
    Printf.ksprintf
      (fun message ->
        diags := mk ~pass ?constraint_name ?provenance message :: !diags)
      fmt
  in
  let error ?constraint_name fmt = emit Diagnostic.error ?constraint_name fmt in
  let warning ?constraint_name fmt =
    emit Diagnostic.warning ?constraint_name fmt
  in
  let ineqs = Gp.Problem.ineqs problem in
  let eqs = Gp.Problem.eqs problem in
  (* Monomial well-formedness: finite positive coefficients, finite
     exponents.  The constructors enforce this, but the pass stands on its
     own so that problems assembled by other frontends are covered too. *)
  let check_mono ?constraint_name where m =
    let c = M.coeff m in
    if not (Float.is_finite c && c > 0.0) then
      error ?constraint_name "%s: coefficient %g of %s is not finite positive"
        where c (M.to_string m);
    List.iter
      (fun (x, e) ->
        if not (Float.is_finite e) then
          error ?constraint_name "%s: exponent %g of %s is not finite" where e
            x)
      (M.exponents m)
  in
  let check_posy ?constraint_name where p =
    if P.is_zero p then error ?constraint_name "%s: empty posynomial" where
    else List.iter (check_mono ?constraint_name where) (P.terms p)
  in
  check_posy "objective" (Gp.Problem.objective problem);
  List.iter (fun (name, p) -> check_posy ~constraint_name:name "inequality" p) ineqs;
  List.iter (fun (name, m) -> check_mono ~constraint_name:name "equality" m) eqs;
  (* Constraint-name hygiene. *)
  let names = List.map fst ineqs @ List.map fst eqs in
  List.iter
    (fun n -> if String.length n = 0 then error "empty constraint name")
    names;
  let rec dups seen = function
    | [] -> []
    | n :: rest ->
      if List.mem n seen then n :: dups seen rest else dups (n :: seen) rest
  in
  List.iter
    (fun n -> error ~constraint_name:n "duplicate constraint name")
    (List.sort_uniq String.compare (dups [] names));
  (* Constant constraints: infeasible ones can never be repaired by the
     solver; feasible ones are vacuous. *)
  let ones _ = 1.0 in
  List.iter
    (fun (name, p) ->
      if (not (P.is_zero p)) && List.for_all M.is_constant (P.terms p) then begin
        let v = P.eval ones p in
        if v > 1.0 +. 1e-9 then
          error ~constraint_name:name
            "constant constraint %g <= 1 is infeasible" v
        else
          warning ~constraint_name:name "constant constraint %g <= 1 is vacuous"
            v
      end)
    ineqs;
  List.iter
    (fun (name, m) ->
      if M.is_constant m then begin
        let c = M.coeff m in
        if Float.abs (c -. 1.0) > 1e-9 then
          error ~constraint_name:name "constant equality %g = 1 is infeasible"
            c
        else
          warning ~constraint_name:name "constant equality 1 = 1 is vacuous"
      end)
    eqs;
  (* Boundedness in log space.  Minimizing pushes a variable toward 0 when
     all its objective exponents are positive (toward infinity when all
     negative); unless some constraint blocks that direction — a negative
     (resp. positive) exponent in an inequality [f <= 1], or membership in
     a monomial equality, which ties the variable to the others — the
     infimum is approached only in the limit and the solver diverges. *)
  let bounded_below = Hashtbl.create 16 and bounded_above = Hashtbl.create 16 in
  List.iter
    (fun (_, p) ->
      List.iter
        (fun m ->
          List.iter
            (fun (x, e) ->
              if e < 0.0 then Hashtbl.replace bounded_below x ()
              else if e > 0.0 then Hashtbl.replace bounded_above x ())
            (M.exponents m))
        (P.terms p))
    ineqs;
  List.iter
    (fun (_, m) ->
      List.iter
        (fun x ->
          Hashtbl.replace bounded_below x ();
          Hashtbl.replace bounded_above x ())
        (M.variables m))
    eqs;
  let objective_signs = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (x, e) ->
          let pos, neg =
            Option.value ~default:(false, false)
              (Hashtbl.find_opt objective_signs x)
          in
          Hashtbl.replace objective_signs x (pos || e > 0.0, neg || e < 0.0))
        (M.exponents m))
    (P.terms (Gp.Problem.objective problem));
  let in_objective =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun x s acc -> (x, s) :: acc) objective_signs [])
  in
  List.iter
    (fun (x, (pos, neg)) ->
      if pos && (not neg) && not (Hashtbl.mem bounded_below x) then
        error
          "objective is unbounded below in log space: no constraint bounds %s \
           away from 0"
          x
      else if neg && (not pos) && not (Hashtbl.mem bounded_above x) then
        error
          "objective is unbounded below in log space: no constraint bounds %s \
           away from infinity"
          x)
    in_objective;
  List.rev !diags
