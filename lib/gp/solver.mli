(** Interior-point solver for geometric programs.

    The problem is transformed to log space ([y = log t]), where the
    objective and inequality constraints become convex log-sum-exp
    functions and monomial equalities become affine equalities.  A
    standard two-phase barrier method then follows: phase I finds a
    strictly feasible point (or a certificate of infeasibility), phase II
    traces the central path with equality-constrained Newton steps. *)

type status =
  | Optimal  (** converged to the requested duality-gap tolerance *)
  | Infeasible  (** phase I could not find a strictly feasible point *)
  | Iteration_limit
      (** progress stalled; the returned point is the best found and is
          feasible, but optimality is not certified *)

type solution = {
  status : status;
  values : (string * float) list;
      (** variable assignment in the original (positive) space *)
  objective : float;  (** objective posynomial value at [values] *)
}

val lookup : solution -> string -> float
(** Value of a variable in the solution.  Raises [Not_found] if the
    variable does not occur in the problem. *)

val env : solution -> string -> float
(** The solution as an evaluation environment. *)

val solve : ?tol:float -> ?max_outer:int -> Problem.t -> solution
(** [solve problem] minimizes the problem objective.  [tol] bounds the
    final duality gap per inequality constraint (default 1e-8);
    [max_outer] bounds the number of barrier updates (default 60). *)
