(** Lowering one permutation choice into a constrained geometric program
    (the inner level of the paper's exploration, Eq. 3 / Eq. 5).

    Variables: trip counts [t<level>.<dim>] for every tileable dim at all
    four levels; in co-design mode also the architectural parameters
    [arch.regs], [arch.sram] and [arch.pes]; for the delay objective the
    epigraph variable [delay.T].

    Constraints: per-dim trip-count products equal to extents; [>= 1]
    bounds; register / SRAM capacity; PE count; the Eq. 5 area budget in
    co-design mode; per-component delay bounds for the delay objective.

    The formulation is built through {!Analysis.Dimexpr}, so every
    intermediate quantity carries a unit (data words, pJ, cycles, um2)
    and mixing them records a diagnostic instead of silently producing a
    dimensionally-nonsensical model.  The tagging is erased before the
    problem reaches the solver — the emitted {!Gp.Problem.t} is
    bit-identical to what the untagged construction produced. *)

type objective =
  | Energy
  | Delay
  | Edp
      (** energy-delay product: [E(t) * T] with the delay epigraph
          constraints — still a valid geometric program (the paper notes
          the possibility without evaluating it) *)

type arch_mode =
  | Fixed of Archspec.Arch.t
  | Codesign of { area_budget : float }
      (** co-design under a chip-area budget; the paper uses the Eyeriss
          area *)

type instance = {
  problem : Gp.Problem.t;
  nest : Workload.Nest.t;
  choice : Permutations.choice;
  analysis : Volume.t;
  objective : objective;
  arch_mode : arch_mode;
  comm : Archspec.Link.comm_model;
      (** which delay lowering this instance was built with; the
          integerizer evaluates candidates under the same model *)
  tileable : string list;
  pinned : (string * float) list;
  provenance : string;
      (** human-readable origin — layer, objective, permutations, spatial
          placement — threaded into every diagnostic about this instance *)
  unit_diagnostics : Analysis.Diagnostic.t list;
      (** unit mismatches recorded while building; empty for a
          well-formed model *)
}

val var_arch_regs : string
val var_arch_sram : string
val var_arch_pes : string
val var_delay : string

val unit_of_var : string -> Analysis.Units.t option
(** The unit model of the formulation's variables: trip counts are
    dimensionless, [arch.regs] / [arch.sram] count data words,
    [arch.pes] is a bare count, [delay.T] counts cycles.  [None] for
    names outside the model. *)

val build :
  ?placement:(string * float) list ->
  ?comm:Archspec.Link.comm_model ->
  Archspec.Technology.t ->
  arch_mode ->
  objective ->
  Permutations.plan ->
  Permutations.choice * Volume.t ->
  instance
(** [placement] selects one of the plan's window-dim placements
    ({!Permutations.plan.placements}); defaults to the plan's default
    pinned assignment (window dims at the register level).

    [comm] selects the delay lowering (DESIGN §16; only Delay/Edp
    objectives carry delay constraints).  [Overlapped] (default) emits
    the two aggregate [delay-sram]/[delay-dram] bandwidth bounds —
    bit-identical to the historical formulation.  [Comm_aware] instead
    bounds each link occupancy separately: [delay-reg] (per-MAC operand
    stream over the used PEs), [delay-dram-rd]/[delay-dram-wr] and
    [delay-noc-rd]/[delay-noc-wr], each with the burst overhead folded
    into its coefficient ([Link.cycles_per_word], fractional bursts — a
    sound lower bound on the evaluation side's quantized count).
    Write-back bounds are skipped for nests without read-write traffic. *)

val lint : instance -> Analysis.Diagnostic.t list
(** The instance's unit diagnostics followed by the DGP discipline
    check ({!Analysis.Discipline.check}) of its problem; empty when the
    formulation passes both. *)

val solution_env : instance -> Gp.Solver.solution -> string -> float
(** Evaluation environment combining the plan's pinned trip counts with
    the solver's values (1.0 for anything else). *)

val cumulative : instance -> Gp.Solver.solution -> string -> level:int -> float
(** Real-valued tile extent of a dim through the given level, e.g. the
    paper's [S_d] for [level = 2]. *)
