module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Level = Mapspace.Level

type tensor_counts = {
  tensor : string;
  read_write : bool;
  fills : (int * float) list;
  copies : (int * float) list;
  copy_words : (int * float) list;
  footprints : (int * float) list;
}

type t = { macs : float; pes_used : int; per_tensor : tensor_counts list }

(* Exact footprint of one tile: product over projections of
   [sum stride * ext(iter) - sum stride + 1]. *)
let exact_footprint tensor (ext : string -> int) =
  List.fold_left
    (fun acc proj ->
      let weighted =
        List.fold_left
          (fun a { Nest.stride; iter } -> a + (stride * ext iter))
          0 proj
      in
      let strides = List.fold_left (fun a { Nest.stride; _ } -> a + stride) 0 proj in
      acc *. float_of_int (weighted - strides + 1))
    1.0 tensor.Nest.projections

let product_factors factors = List.fold_left (fun a (_, f) -> a *. float_of_int f) 1.0 factors

(* Words copied into the storage below temporal level [level] for one
   tensor, across the whole execution (Algorithm 1 with concrete trip
   counts).  Besides the total volume, the same walk yields the copy
   schedule's shape: how many copy executions happen ([copies]) and how
   many words each one moves ([copy_words], identical across copies —
   the tile shape does not depend on the loop indices).  The volume is
   computed with exactly the original accumulation order, so [fills]
   stays bit-identical to the pre-communication-model code. *)
let fill_shape mapping tensor ~level =
  let lvl = Mapping.level mapping level in
  let ext_below dim = Mapping.extent_through mapping ~level:(level - 1) dim in
  (* Inner-to-outer walk over this level's permutation. *)
  let hoist_dim = ref None in
  let mult = ref 1.0 in
  let can_hoist = ref true in
  (* Loops with trip count 1 are not emitted in generated code, so they
     neither stop hoisting nor multiply the volume. *)
  List.iter
    (fun it ->
      let f = Mapping.factor mapping ~level it in
      if f > 1 then begin
        if !can_hoist then begin
          if Nest.tensor_mentions tensor it then begin
            can_hoist := false;
            hoist_dim := Some it
          end
        end
        else mult := !mult *. float_of_int f
      end)
    (List.rev lvl.Mapping.perm);
  let cur dim =
    match !hoist_dim with
    | Some h when String.equal h dim -> ext_below dim * Mapping.factor mapping ~level dim
    | Some _ | None -> ext_below dim
  in
  let words = exact_footprint tensor cur in
  let volume = ref (words *. !mult) in
  let copies = ref !mult in
  (* Loops of every outer level multiply the volume; spatial levels only
     through dims present in the tensor (multicast / spatial reduction). *)
  let nlevels = Mapping.num_levels mapping in
  for l = level + 1 to nlevels - 1 do
    let outer = Mapping.level mapping l in
    match outer.Mapping.kind with
    | Level.Temporal ->
      volume := !volume *. product_factors outer.Mapping.factors;
      copies := !copies *. product_factors outer.Mapping.factors
    | Level.Spatial ->
      List.iter
        (fun (dim, f) ->
          if Nest.tensor_mentions tensor dim then begin
            volume := !volume *. float_of_int f;
            copies := !copies *. float_of_int f
          end)
        outer.Mapping.factors
  done;
  (!volume, !copies, words)

let tensor_counts mapping tensor =
  let nlevels = Mapping.num_levels mapping in
  let boundary_levels =
    List.filter
      (fun l -> (Mapping.level mapping l).Mapping.kind = Level.Temporal)
      (List.init (nlevels - 1) (fun i -> i + 1))
  in
  let shapes = List.map (fun l -> (l, fill_shape mapping tensor ~level:l)) boundary_levels in
  let fills = List.map (fun (l, (v, _, _)) -> (l, v)) shapes in
  let copies = List.map (fun (l, (_, c, _)) -> (l, c)) shapes in
  let copy_words = List.map (fun (l, (_, _, w)) -> (l, w)) shapes in
  let footprints =
    List.map
      (fun l ->
        let ext dim = Mapping.extent_through mapping ~level:(l - 1) dim in
        (l, exact_footprint tensor ext))
      boundary_levels
  in
  {
    tensor = tensor.Nest.tensor_name;
    read_write = tensor.Nest.read_write;
    fills;
    copies;
    copy_words;
    footprints;
  }

let compute nest mapping =
  match Mapping.validate nest mapping with
  | Error _ as e -> e
  | Ok () ->
    Ok
      {
        macs = Nest.ops nest;
        pes_used = Mapping.spatial_size mapping;
        per_tensor = List.map (tensor_counts mapping) (Nest.tensors nest);
      }

(* --- canonical accessors --- *)

let boundary_total ?(rw_only = false) t ~level =
  List.fold_left
    (fun acc tc ->
      if rw_only && not tc.read_write then acc
      else
        match List.assoc_opt level tc.fills with
        | Some v -> acc +. v
        | None -> invalid_arg "Counts: mapping does not have the canonical levels")
    0.0 t.per_tensor

(* Burst count of one boundary's copy schedule: each copy moves a fixed
   number of words, quantized up to whole bursts ([ceil]).  The timed
   refsim derives the same number by walking the schedule copy by copy;
   both sides are exact integer-valued floats, so they agree
   bit-for-bit. *)
let boundary_bursts ?(rw_only = false) t ~level ~burst_words =
  List.fold_left
    (fun acc tc ->
      if rw_only && not tc.read_write then acc
      else
        match
          (List.assoc_opt level tc.copies, List.assoc_opt level tc.copy_words)
        with
        | Some c, Some w -> acc +. (c *. Float.ceil (w /. burst_words))
        | _ -> invalid_arg "Counts: mapping does not have the canonical levels")
    0.0 t.per_tensor

let sram_to_reg t = boundary_total t ~level:Level.pe_temporal_level

let reg_to_sram t = boundary_total ~rw_only:true t ~level:Level.pe_temporal_level

let dram_to_sram t = boundary_total t ~level:Level.dram_temporal_level

let sram_to_dram t = boundary_total ~rw_only:true t ~level:Level.dram_temporal_level

let footprint_total t ~level =
  List.fold_left
    (fun acc tc ->
      match List.assoc_opt level tc.footprints with
      | Some v -> acc +. v
      | None -> invalid_arg "Counts: mapping does not have the canonical levels")
    0.0 t.per_tensor

let reg_words_per_pe t = footprint_total t ~level:Level.pe_temporal_level

let sram_words_used t = footprint_total t ~level:Level.dram_temporal_level

let pp ppf t =
  Format.fprintf ppf "@[<v>macs=%g, PEs used=%d@," t.macs t.pes_used;
  List.iter
    (fun tc ->
      Format.fprintf ppf "%s%s:" tc.tensor (if tc.read_write then "(rw)" else "");
      List.iter (fun (l, v) -> Format.fprintf ppf " fill@L%d=%g" l v) tc.fills;
      List.iter (fun (l, v) -> Format.fprintf ppf " buf@L%d=%g" l v) tc.footprints;
      Format.fprintf ppf "@,")
    t.per_tensor;
  Format.fprintf ppf "@]"
