(* Solver-path benchmark: the compiled evaluation kernels + structured
   KKT + sweep reuse (the current defaults) against the legacy
   list-of-closures path, on a fixed zoo subset, single-threaded so the
   comparison measures solver work rather than scheduling.

   Emits BENCH_solver.json (flat one-level object; format documented in
   README.md) so the perf trajectory has a recorded baseline —
   tools/perfdiff.sh diffs two such files and fails on regression.

   Usage:
     dune exec bench/solver.exe                         # zoo subset, repeat 2
     dune exec bench/solver.exe -- --layers resnet-2 --repeat 3
     dune exec bench/solver.exe -- --max-choices 4 --out /tmp/b.json
     dune exec bench/solver.exe -- --smoke              # tiny CI smoke run *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module Arch = Archspec.Arch
module Conv = Workload.Conv
module Json = Obs.Json

let tech = Archspec.Technology.table3

type options = {
  layers : string list;
  repeat : int;
  max_choices : int;
  out : string;
}

let parse_args () =
  let layers = ref [ "resnet-2"; "resnet-8"; "yolo-2" ] in
  let repeat = ref 2 in
  let max_choices = ref O.default_config.O.max_choices in
  let out = ref "BENCH_solver.json" in
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: invalid value %S, expected a positive integer\n" flag s;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--layers" :: spec :: rest ->
      layers := String.split_on_char ',' spec;
      go rest
    | "--repeat" :: n :: rest ->
      repeat := int_arg "--repeat" n;
      go rest
    | "--max-choices" :: n :: rest ->
      max_choices := int_arg "--max-choices" n;
      go rest
    | "--out" :: file :: rest ->
      out := file;
      go rest
    | "--smoke" :: rest ->
      (* One small layer, shallow sweep: a seconds-scale sanity run for
         the @bench alias, not a measurement. *)
      layers := [ "resnet-2" ];
      repeat := 1;
      max_choices := 4;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (expected --layers N,N,..., --repeat N, --max-choices N, \
         --out FILE, --smoke)\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  { layers = !layers; repeat = !repeat; max_choices = !max_choices; out = !out }

type measurement = {
  wall_s : float;  (** best over repeats, whole layer set *)
  solves : int;  (** logical GP solves (replayed duplicates included) *)
  newton_steps : int;
  objective_sum : float;  (** sum of best continuous objectives, sanity *)
  pruned : int;  (** pairs skipped by presolve (0 with presolve off) *)
}

let measure ?(arch = Arch.eyeriss) options config nests =
  let one_pass () =
    let t0 = Unix.gettimeofday () in
    let acc =
      List.fold_left
        (fun (solves, newton, obj, pruned) (name, nest) ->
          match O.dataflow ~config tech arch F.Energy nest with
          | Ok r ->
            let t = r.O.solve_totals in
            ( solves + t.Gp.Solver.solves,
              newton + t.Gp.Solver.t_newton_iters,
              obj +. r.O.best_continuous,
              pruned + List.length r.O.pruned )
          | Error msg ->
            Printf.eprintf "warning: %s failed: %s\n" name msg;
            (solves, newton, obj, pruned))
        (0, 0, 0.0, 0) nests
    in
    (Unix.gettimeofday () -. t0, acc)
  in
  let rec loop k best =
    if k = 0 then best
    else
      let dt, acc = one_pass () in
      let best =
        match best with Some (dt0, _) when dt0 <= dt -> best | _ -> Some (dt, acc)
      in
      loop (k - 1) best
  in
  match loop options.repeat None with
  | Some (wall_s, (solves, newton_steps, objective_sum, pruned)) ->
    { wall_s; solves; newton_steps; objective_sum; pruned }
  | None -> assert false

let () =
  let options = parse_args () in
  let nests =
    List.map
      (fun name ->
        match Workload.Zoo.find name with
        | layer -> (name, Conv.to_nest layer)
        | exception Not_found ->
          Printf.eprintf "unknown layer %S; see `thistle layers'\n" name;
          exit 2)
      options.layers
  in
  let base =
    { O.default_config with O.jobs = 1; max_choices = options.max_choices }
  in
  (* The pre-PR solver path: closure-per-function evaluation, dense LU
     KKT, no reuse across the sweep. *)
  let list_config =
    { base with O.gp_kernel = `List; dedupe = false; warm_start = false }
  in
  Printf.printf "solver bench: layers %s, max-choices %d, jobs 1, best of %d run(s)\n"
    (String.concat "," options.layers)
    options.max_choices options.repeat;
  Printf.printf "%-9s %9s %8s %13s %10s\n" "path" "wall s" "solves" "newton steps"
    "solves/s";
  let show label (m : measurement) =
    Printf.printf "%-9s %9.3f %8d %13d %10.1f\n%!" label m.wall_s m.solves
      m.newton_steps
      (float_of_int m.solves /. m.wall_s)
  in
  let listed = measure options list_config nests in
  show "list" listed;
  let compiled = measure options base nests in
  show "compiled" compiled;
  let speedup = listed.wall_s /. compiled.wall_s in
  Printf.printf "speedup: %.2fx\n" speedup;
  (* Presolve scenario: a capacity-starved edge accelerator where many
     (choice, placement) pairs are statically infeasible, so interval
     pruning skips whole solves.  The roomy Eyeriss runs above prune
     nothing — this is the workload the analysis pays off on. *)
  let edge = Arch.make ~name:"edge" ~pes:32 ~registers:16 ~sram_words:4096 in
  let presolve_off =
    measure ~arch:edge options
      { base with O.presolve = Analysis.Presolve.Off }
      nests
  in
  let presolve_on =
    measure ~arch:edge options
      { base with O.presolve = Analysis.Presolve.Prune }
      nests
  in
  let presolve_speedup = presolve_off.wall_s /. presolve_on.wall_s in
  Printf.printf "edge arch (P=32 R=16 S=4096), presolve off vs prune:\n";
  show "off" presolve_off;
  show "prune" presolve_on;
  Printf.printf "presolve: pruned %d pair(s), speedup %.2fx\n" presolve_on.pruned
    presolve_speedup;
  let drift =
    Float.abs (listed.objective_sum -. compiled.objective_sum)
    /. (1.0 +. Float.abs listed.objective_sum)
  in
  if drift > 1e-6 then
    Printf.eprintf
      "warning: continuous objectives drifted between paths (relative %.3g)\n" drift;
  let buf = Buffer.create 512 in
  let f name v b = Json.field b name (fun b -> Json.float b v) in
  let i name v b = Json.field b name (fun b -> Json.int b v) in
  let s name v b = Json.field b name (fun b -> Json.str b v) in
  Json.obj buf
    [
      s "bench" "solver";
      s "layers" (String.concat "," options.layers);
      i "repeat" options.repeat;
      i "max_choices" options.max_choices;
      f "list_wall_s" listed.wall_s;
      i "list_solves" listed.solves;
      i "list_newton_steps" listed.newton_steps;
      f "list_solves_per_s" (float_of_int listed.solves /. listed.wall_s);
      f "compiled_wall_s" compiled.wall_s;
      i "compiled_solves" compiled.solves;
      i "compiled_newton_steps" compiled.newton_steps;
      f "compiled_solves_per_s" (float_of_int compiled.solves /. compiled.wall_s);
      f "speedup" speedup;
      f "presolve_off_wall_s" presolve_off.wall_s;
      f "presolve_on_wall_s" presolve_on.wall_s;
      i "presolve_pruned" presolve_on.pruned;
      f "presolve_speedup" presolve_speedup;
    ];
  Buffer.add_char buf '\n';
  let oc = open_out options.out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" options.out
