(* Order-preserving parallel map over the shared domain pool.  See
   par.mli for the determinism and exception contracts. *)

let default_jobs () = Domain.recommended_domain_count ()

let shared_lock = Mutex.create ()

let shared = ref None

let shared_pool ~jobs =
  Mutex.lock shared_lock;
  let pool =
    match !shared with
    | Some p -> p
    | None ->
      let p = Pool.create ~workers:0 in
      at_exit (fun () -> try Pool.shutdown p with _ -> ());
      shared := Some p;
      p
  in
  Mutex.unlock shared_lock;
  Pool.ensure_workers pool (jobs - 1);
  pool

type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

(* Counts items, not pool tasks: the value only depends on the workload,
   so it is identical for any [jobs] (see the Obs.Metrics determinism
   contract). *)
let m_tasks = Obs.Metrics.counter "exec.tasks"

let map ?pool ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  Obs.Metrics.add m_tasks n;
  if jobs <= 1 || n <= 1 || Pool.inside_worker () then List.map f xs
  else begin
    let pool = match pool with Some p -> p | None -> shared_pool ~jobs in
    let items = Array.of_list xs in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* Lanes self-schedule over the item indices, so any subset of lanes
       actually running (even just the submitting domain) processes every
       item exactly once. *)
    let lane () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            (match f items.(i) with
            | v -> Done v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ()));
          go ()
        end
      in
      go ()
    in
    Pool.run pool (List.init (Int.min jobs n) (fun _ -> lane));
    (* Pool.run's lock hand-offs order every slot write before these
       reads.  Surface the lowest-index failure, as List.map would. *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Done v -> v
        | Pending | Raised _ -> assert false)
  end

let filter_map ?pool ?jobs f xs = List.filter_map Fun.id (map ?pool ?jobs f xs)
