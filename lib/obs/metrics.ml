type counter = int Atomic.t

type gauge = float Atomic.t

let nbuckets = 63

type histogram = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_buckets : int Atomic.t array;  (* bucket i: samples in (2^(i-1), 2^i] *)
}

type metric = C of counter | G of gauge | H of histogram

let on = Atomic.make false

let enabled () = Atomic.get on

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let register name make describe =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m
  in
  Mutex.unlock registry_lock;
  match describe m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is already registered as another metric kind" name)

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | G _ | H _ -> None)

let gauge name =
  register name
    (fun () -> G (Atomic.make neg_infinity))
    (function G g -> Some g | C _ | H _ -> None)

let histogram name =
  register name
    (fun () ->
      H
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
          h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
        })
    (function H h -> Some h | C _ | G _ -> None)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

let incr c = add c 1

let set g v = if Atomic.get on then Atomic.set g v

let rec max_merge g v =
  let cur = Atomic.get g in
  if v <= cur then ()
  else if Atomic.compare_and_set g cur v then ()
  else max_merge g v

let observe_max g v = if Atomic.get on then max_merge g v

let rec float_add a v =
  let cur = Atomic.get a in
  if Atomic.compare_and_set a cur (cur +. v) then () else float_add a v

let now_ns () = Unix.gettimeofday () *. 1e9

let bucket_index v =
  if not (v > 1.0) then 0
  else Int.min (nbuckets - 1) (int_of_float (Float.ceil (Float.log2 v)))

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    float_add h.h_sum v;
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1)
  end

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g neg_infinity
      | H h ->
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0.0;
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    registry;
  Mutex.unlock registry_lock

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let snapshot () =
  Mutex.lock registry_lock;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | C c -> Counter (Atomic.get c)
          | G g ->
            let x = Atomic.get g in
            Gauge (if x = neg_infinity then 0.0 else x)
          | H h ->
            let buckets = ref [] in
            Array.iteri
              (fun i b ->
                let n = Atomic.get b in
                if n > 0 then buckets := (Float.pow 2.0 (float_of_int i), n) :: !buckets)
              h.h_buckets;
            Histogram
              {
                count = Atomic.get h.h_count;
                sum = Atomic.get h.h_sum;
                buckets = List.rev !buckets;
              }
        in
        (name, v) :: acc)
      registry []
  in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let counters dump =
  List.filter_map (function name, Counter n -> Some (name, n) | _ -> None) dump

let pp_text ppf dump =
  let width =
    List.fold_left (fun acc (name, _) -> Int.max acc (String.length name)) 10 dump
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-*s %d@." width name n
      | Gauge x -> Format.fprintf ppf "%-*s %.6g@." width name x
      | Histogram { count; sum; buckets } ->
        let mean = if count = 0 then 0.0 else sum /. float_of_int count in
        Format.fprintf ppf "%-*s count=%d sum=%.6g mean=%.6g" width name count sum mean;
        let top =
          List.filteri (fun i _ -> i < 3)
            (List.sort (fun (_, a) (_, b) -> Int.compare b a) buckets)
        in
        List.iter (fun (bound, n) -> Format.fprintf ppf " (<=%.0f: %d)" bound n) top;
        Format.fprintf ppf "@.")
    dump

let to_json dump =
  let b = Buffer.create 512 in
  let section pick render b =
    Json.obj b
      (List.filter_map
         (fun (name, v) ->
           match pick v with
           | Some payload -> Some (fun b -> Json.field b name (render payload))
           | None -> None)
         dump)
  in
  Json.obj b
    [
      (fun b ->
        Json.field b "counters"
          (section
             (function Counter n -> Some n | _ -> None)
             (fun n b -> Json.int b n)));
      (fun b ->
        Json.field b "gauges"
          (section
             (function Gauge x -> Some x | _ -> None)
             (fun x b -> Json.float b x)));
      (fun b ->
        Json.field b "histograms"
          (section
             (function
               | Histogram { count; sum; buckets } -> Some (count, sum, buckets)
               | _ -> None)
             (fun (count, sum, buckets) b ->
               Json.obj b
                 [
                   (fun b -> Json.field b "count" (fun b -> Json.int b count));
                   (fun b -> Json.field b "sum" (fun b -> Json.float b sum));
                   (fun b ->
                     Json.field b "buckets" (fun b ->
                         Json.obj b
                           (List.map
                              (fun (bound, n) ->
                                fun b ->
                                 Json.field b
                                   (Printf.sprintf "%.0f" bound)
                                   (fun b -> Json.int b n))
                              buckets)));
                 ])));
    ];
  Buffer.contents b
