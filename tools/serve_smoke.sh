#!/bin/sh
# serve_smoke.sh THISTLE_CLI
#
# End-to-end smoke of the serve daemon (DESIGN §14), capped small
# enough for `dune runtest`:
#   1. a cold `thistle optimize` run is the reference report;
#   2. a daemon with a result store must serve the same request
#      byte-identically, cold (miss) and again (hit);
#   3. after kill -9 — stale socket file and all — a restarted daemon
#      on the same store must answer warm from disk (cache_hits > 0,
#      cache_misses = 0), still byte-identically.
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 path/to/thistle_cli.exe" >&2
    exit 2
fi

cli=$1
case $cli in */*) ;; *) cli=./$cli ;; esac
layer=resnet-2
opts="--layer $layer --max-choices 4"

dir=$(mktemp -d "${TMPDIR:-/tmp}/thistle_serve.XXXXXX")
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

sock=$dir/sock
store=$dir/store

start_daemon() {
    # A stale socket file from a previous kill -9 would satisfy the
    # readiness poll before the new daemon has bound.
    rm -f "$sock"
    # Launched via command substitution so the daemon is not a job of
    # this shell: no "Killed" job-control notices under kill -9.
    daemon_pid=$(
        "$cli" serve --socket "$sock" --store "$store" --jobs 2 \
            > "$dir/daemon.log" 2>&1 &
        echo $!
    )
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve smoke: daemon did not come up" >&2
            cat "$dir/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$cli" optimize $opts --jobs 2 > "$dir/reference.txt"

start_daemon
"$cli" client optimize --socket "$sock" $opts > "$dir/cold.txt"
"$cli" client optimize --socket "$sock" $opts > "$dir/warm.txt"
for f in cold warm; do
    if ! cmp -s "$dir/reference.txt" "$dir/$f.txt"; then
        echo "serve smoke: served $f report differs from the cold CLI run" >&2
        diff "$dir/reference.txt" "$dir/$f.txt" >&2 || true
        exit 1
    fi
done

# Kill without ceremony: the socket file stays behind, the store must
# already be durable (entries land via rename).
kill -9 "$daemon_pid"
while kill -0 "$daemon_pid" 2>/dev/null; do sleep 0.1; done
daemon_pid=

start_daemon
"$cli" client optimize --socket "$sock" $opts > "$dir/restarted.txt"
if ! cmp -s "$dir/reference.txt" "$dir/restarted.txt"; then
    echo "serve smoke: post-restart report differs from the cold CLI run" >&2
    diff "$dir/reference.txt" "$dir/restarted.txt" >&2 || true
    exit 1
fi

"$cli" client metrics --socket "$sock" > "$dir/metrics.json"
if ! grep -q '"serve.cache_hits":1' "$dir/metrics.json"; then
    echo "serve smoke: restarted daemon did not answer from the store:" >&2
    cat "$dir/metrics.json" >&2
    exit 1
fi
if ! grep -q '"serve.cache_misses":0' "$dir/metrics.json"; then
    echo "serve smoke: restarted daemon re-solved a stored request:" >&2
    cat "$dir/metrics.json" >&2
    exit 1
fi

echo "serve smoke: cold, warm and post-restart reports byte-identical on $layer"
