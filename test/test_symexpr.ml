(* Tests for the symbolic expression layer: monomials, posynomials and the
   factored footprint forms used by Algorithm 1. *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module AD = Symexpr.Affine_dim
module FP = Symexpr.Footprint

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let env_of_list assoc x = List.assoc x assoc

(* --- Monomial --- *)

let test_monomial_normalization () =
  let m = M.make 2.0 [ ("y", 1.0); ("x", 2.0); ("y", 1.0) ] in
  Alcotest.(check (list (pair string (float 0.0))))
    "merged and sorted"
    [ ("x", 2.0); ("y", 2.0) ]
    (M.exponents m);
  let zero_exp = M.make 3.0 [ ("x", 1.0); ("x", -1.0) ] in
  Alcotest.(check (list (pair string (float 0.0)))) "zero dropped" [] (M.exponents zero_exp)

let test_monomial_algebra () =
  let x = M.var "x" and y = M.var "y" in
  let m = M.mul (M.scale 3.0 x) (M.pow y 2.0) in
  Alcotest.(check bool)
    "3 x y^2" true
    (M.equal m (M.make 3.0 [ ("x", 1.0); ("y", 2.0) ]));
  let d = M.div m (M.scale 3.0 y) in
  Alcotest.(check bool) "x y" true (M.equal d (M.make 1.0 [ ("x", 1.0); ("y", 1.0) ]));
  Alcotest.(check bool)
    "pow" true
    (M.equal (M.pow m 0.5) (M.make (sqrt 3.0) [ ("x", 0.5); ("y", 1.0) ]))

let test_monomial_eval () =
  let m = M.make 2.0 [ ("x", 2.0); ("y", -1.0) ] in
  Alcotest.(check bool)
    "eval" true
    (approx 6.0 (M.eval (env_of_list [ ("x", 3.0); ("y", 3.0) ]) m))

let test_monomial_subst () =
  (* Algorithm 1's replace: x := x * q. *)
  let m = M.make 2.0 [ ("x", 2.0); ("y", 1.0) ] in
  let m' = M.subst "x" (M.mul (M.var "x") (M.var "q")) m in
  Alcotest.(check bool)
    "x^2 -> x^2 q^2" true
    (M.equal m' (M.make 2.0 [ ("x", 2.0); ("q", 2.0); ("y", 1.0) ]))

let test_monomial_bind () =
  let m = M.make 2.0 [ ("x", 2.0); ("y", 1.0) ] in
  let m' = M.bind "x" 3.0 m in
  Alcotest.(check bool) "bound" true (M.equal m' (M.make 18.0 [ ("y", 1.0) ]));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Monomial.bind: value must be finite positive") (fun () ->
      ignore (M.bind "x" 0.0 m))

let test_monomial_positive_coeff () =
  Alcotest.check_raises "nonpositive coeff"
    (Invalid_argument "Monomial.make: coefficient must be finite positive (got -1)") (fun () ->
      ignore (M.make (-1.0) []))

(* --- Posynomial --- *)

let test_posynomial_merge () =
  let p = P.of_monomials [ M.var "x"; M.scale 2.0 (M.var "x"); M.var "y" ] in
  Alcotest.(check int) "two terms" 2 (P.num_terms p);
  Alcotest.(check bool)
    "3x + y" true
    (P.equal p (P.add (P.scale 3.0 (P.var "x")) (P.var "y")))

let test_posynomial_mul () =
  let p = P.add (P.var "x") (P.const 1.0) in
  let q = P.add (P.var "y") (P.const 2.0) in
  let r = P.mul p q in
  (* (x+1)(y+2) = xy + 2x + y + 2 *)
  Alcotest.(check int) "four terms" 4 (P.num_terms r);
  let env = env_of_list [ ("x", 2.0); ("y", 5.0) ] in
  Alcotest.(check bool) "eval matches" true (approx (3.0 *. 7.0) (P.eval env r))

let test_posynomial_div_monomial () =
  let p = P.add (P.var "x") (P.var "y") in
  let d = P.div_monomial p (M.var "x") in
  let env = env_of_list [ ("x", 4.0); ("y", 8.0) ] in
  Alcotest.(check bool) "(x+y)/x" true (approx 3.0 (P.eval env d))

let test_posynomial_bind () =
  (* Binding may merge previously-distinct terms. *)
  let p = P.of_monomials [ M.make 1.0 [ ("x", 1.0) ]; M.make 1.0 [ ("y", 1.0) ] ] in
  let b = P.bind "x" 2.0 (P.bind "y" 2.0 p) in
  Alcotest.(check bool) "merged constant" true (P.equal b (P.const 4.0));
  Alcotest.(check int) "single term" 1 (P.num_terms b)

(* --- Affine_dim / Footprint --- *)

let test_affine_dim_exact () =
  (* x*h + r with stride 2 and tile extents h=4, r=3: 2*4 + 3 - 2 = 9. *)
  let d = AD.make [ (2, M.var "h"); (1, M.var "r") ] (-2) in
  let env = env_of_list [ ("h", 4.0); ("r", 3.0) ] in
  Alcotest.(check bool) "exact" true (approx 9.0 (AD.eval_exact env d));
  (* Relaxed view drops the negative constant: 2h + r = 11. *)
  Alcotest.(check bool) "relaxed" true (approx 11.0 (P.eval env (AD.to_posynomial d)))

let test_affine_dim_subst () =
  let d = AD.make [ (1, M.var "h"); (1, M.var "r") ] (-1) in
  let d' = AD.subst "h" (M.mul (M.var "h") (M.var "q")) d in
  let env = env_of_list [ ("h", 4.0); ("r", 3.0); ("q", 2.0) ] in
  Alcotest.(check bool) "h q + r - 1" true (approx 10.0 (AD.eval_exact env d'))

let test_footprint_product () =
  let fp =
    FP.make
      [ AD.of_extent (M.var "a"); AD.make [ (1, M.var "b"); (1, M.var "c") ] (-1) ]
  in
  let env = env_of_list [ ("a", 5.0); ("b", 3.0); ("c", 2.0) ] in
  Alcotest.(check bool) "5 * 4" true (approx 20.0 (FP.eval_exact env fp));
  (* Posynomial view: a * (b + c) has 2 terms. *)
  Alcotest.(check int) "expanded terms" 2 (P.num_terms (FP.to_posynomial fp))

(* --- properties --- *)

let gen_monomial =
  let open QCheck2.Gen in
  let* coeff = float_range 0.1 10.0 in
  let* exps =
    small_list (pair (oneofl [ "x"; "y"; "z" ]) (float_range (-2.0) 2.0))
  in
  return (M.make coeff exps)

let gen_env =
  let open QCheck2.Gen in
  let* x = float_range 0.5 4.0 in
  let* y = float_range 0.5 4.0 in
  let* z = float_range 0.5 4.0 in
  return (env_of_list [ ("x", x); ("y", y); ("z", z) ])

let prop_monomial_mul_eval =
  QCheck2.Test.make ~name:"eval (a*b) = eval a * eval b" ~count:300
    QCheck2.Gen.(triple gen_monomial gen_monomial gen_env)
    (fun (a, b, env) -> approx ~eps:1e-6 (M.eval env a *. M.eval env b) (M.eval env (M.mul a b)))

let gen_posynomial =
  QCheck2.Gen.(map P.of_monomials (list_size (int_range 1 6) gen_monomial))

let prop_posynomial_add_eval =
  QCheck2.Test.make ~name:"eval (p+q) = eval p + eval q" ~count:300
    QCheck2.Gen.(triple gen_posynomial gen_posynomial gen_env)
    (fun (p, q, env) ->
      approx ~eps:1e-6 (P.eval env p +. P.eval env q) (P.eval env (P.add p q)))

let prop_posynomial_mul_eval =
  QCheck2.Test.make ~name:"eval (p*q) = eval p * eval q" ~count:300
    QCheck2.Gen.(triple gen_posynomial gen_posynomial gen_env)
    (fun (p, q, env) ->
      approx ~eps:1e-6 (P.eval env p *. P.eval env q) (P.eval env (P.mul p q)))

let prop_bind_is_eval =
  QCheck2.Test.make ~name:"bind then eval = eval" ~count:300
    QCheck2.Gen.(triple gen_posynomial (float_range 0.5 4.0) gen_env)
    (fun (p, v, env) ->
      let bound = P.bind "x" v p in
      let env' var = if String.equal var "x" then v else env var in
      approx ~eps:1e-6 (P.eval env' p) (P.eval env' bound) && not (List.mem "x" (P.variables bound)))

let () =
  Alcotest.run "symexpr"
    [
      ( "monomial",
        [
          Alcotest.test_case "normalization" `Quick test_monomial_normalization;
          Alcotest.test_case "algebra" `Quick test_monomial_algebra;
          Alcotest.test_case "eval" `Quick test_monomial_eval;
          Alcotest.test_case "subst" `Quick test_monomial_subst;
          Alcotest.test_case "bind" `Quick test_monomial_bind;
          Alcotest.test_case "positive coeff" `Quick test_monomial_positive_coeff;
        ] );
      ( "posynomial",
        [
          Alcotest.test_case "merge like terms" `Quick test_posynomial_merge;
          Alcotest.test_case "mul" `Quick test_posynomial_mul;
          Alcotest.test_case "div by monomial" `Quick test_posynomial_div_monomial;
          Alcotest.test_case "bind" `Quick test_posynomial_bind;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "affine exact vs relaxed" `Quick test_affine_dim_exact;
          Alcotest.test_case "affine subst" `Quick test_affine_dim_subst;
          Alcotest.test_case "product" `Quick test_footprint_product;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_monomial_mul_eval;
            prop_posynomial_add_eval;
            prop_posynomial_mul_eval;
            prop_bind_is_eval;
          ] );
    ]
