(** Append-only JSONL journal of completed sweep pairs.

    One line per completed (choice x placement) pair, recording the
    pair's global index, a 64-bit fingerprint of (problem structure,
    solver configuration), and the pair's full fate: the solver solution
    (status, objective and variable values as exact IEEE-754 bit
    patterns), the quarantining {!Robust.failure}, or the presolve
    infeasibility {!Analysis.Presolve.proof} that pruned the pair
    without a solve, plus the final attempt's solver telemetry, retry
    count and accumulated deadline hits.  Replaying an entry therefore
    reconstructs the in-memory slot of {!Thistle.Optimize.run}
    bit-for-bit — a resumed or merged run reports exactly what the
    uninterrupted run would have.

    Crash-safety contract: entries are appended (and flushed) as each
    pair completes, so a killed run's journal holds every pair that
    finished.  Only the final line can be torn by a kill mid-write;
    {!load} silently drops undecodable lines for exactly that reason.
    Because workers append concurrently, the {e line order} of a
    parallel run is timing-dependent — the journal's contract is that
    its contents {e as a set of entries} are a function of the workload
    and configuration alone.  Entries are keyed by pair index; when a
    file holds several entries for one pair (e.g. appended across runs),
    the last one wins.

    Fingerprints version the cache: an entry is replayed only when its
    fingerprint matches the current run's
    [hash(problem_key | config fingerprint)], so a solver or
    formulation change invalidates stale pairs pair-by-pair and an
    incremental re-sweep re-solves only what changed. *)

type fate =
  | Solved of Gp.Solver.solution
  | Quarantined of Robust.failure
  | Pruned of Analysis.Presolve.proof
      (** statically infeasible: never solved; the proof is
          re-checkable via {!Analysis.Certificate.check_prune} *)

type entry = {
  pair : int;  (** global pair index in the deterministic enumeration *)
  fingerprint : string;  (** {!fingerprint} of the pair's problem + config *)
  provenance : string;  (** human-readable origin, for audits only *)
  fate : fate;
  stats : Gp.Solver.stats;
      (** final attempt's telemetry; all-zero for pruned pairs *)
  retries : int;  (** extra attempts spent before [fate] *)
  deadline_hits : int;  (** deadline hits across every attempt *)
}

val version : int
(** Journal schema version; entries from other versions never decode. *)

val fingerprint : config:string -> problem_key:string -> string
(** 16-hex-digit digest (FNV-1a 64 with a murmur3 finalizer) of the
    pair's canonical problem key and the solver-configuration
    fingerprint.  Collisions are possible in principle (64 bits) but
    would require two different programs in one sweep to collide; the
    journal is a cache, not a proof system. *)

val encode : entry -> string
(** One JSON object, no trailing newline.  Floats are serialized as
    IEEE-754 bit patterns in hex, so decoding is exact. *)

val decode : string -> (entry, string) result

val append_line : out_channel -> entry -> unit
(** Write [encode entry] plus a newline and flush.  Callers serialize
    concurrent appends themselves (one mutex per journal file). *)

val load : string -> (entry list, string) result
(** All decodable entries of a journal file, in file order.  Undecodable
    or wrong-version lines are dropped silently (a killed run may tear
    its final line).  [Error] only when the file cannot be read. *)

val load_existing : string -> (entry list, string) result
(** Like {!load} but a missing file is an empty journal. *)

val compact : entry list -> entry list
(** Collapse an incrementally-grown journal to its effective contents:
    one entry per pair index (the last occurrence wins, matching the
    resume loader's replacement order), sorted by ascending pair index.
    Idempotent; loading the compacted list replays exactly like loading
    the original. *)

val write_file : string -> entry list -> unit
(** Replace [path] with exactly [entries], one line each (used by the
    merge step to materialize a combined journal, and by
    [thistle journal compact]). *)
