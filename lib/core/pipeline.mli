(** Multi-layer flows used by the paper's evaluation (Figs. 6 and 8):
    layer-wise optimization of a whole DNN pipeline, selection of the
    dominant layer, and re-optimization of every layer for the dominant
    layer's fixed architecture. *)

type entry = {
  nest : Workload.Nest.t;
  result : (Optimize.report, string) result;
}

val run_layers :
  ?config:Optimize.config ->
  Archspec.Technology.t ->
  Formulate.arch_mode ->
  Formulate.objective ->
  Workload.Nest.t list ->
  entry list
(** Optimize each layer independently; failures are recorded per layer. *)

val dominant_arch :
  Formulate.objective -> entry list -> (Archspec.Arch.t, string) result
(** The architecture chosen by the layer-wise co-design for the layer with
    the largest total energy (respectively delay) — the paper's rule for
    picking the single architecture shared by all layers. *)

val metrics : entry -> Accmodel.Evaluate.t option
(** The model metrics of an entry, when optimization succeeded. *)
