(** Tiling levels of the canonical accelerator mapping.

    Levels are listed innermost first.  The canonical structure matches the
    paper's three-level memory hierarchy:

    - level 0 [`Register`]: temporal loops inside one register tile;
    - level 1 [`Pe_temporal`]: per-PE sequential loops over register tiles
      (register refills from SRAM hoist within this level);
    - level 2 [`Spatial`]: the PE array (loop order irrelevant; absent
      iterators multicast);
    - level 3 [`Dram_temporal`]: sequential loops over SRAM tiles (SRAM
      refills from DRAM hoist within this level). *)

type kind = Temporal | Spatial

val canonical : kind list
(** [[Temporal; Temporal; Spatial; Temporal]], innermost first. *)

val canonical_names : string list
(** [["reg"; "pe"; "spatial"; "dram"]]. *)

val register_level : int
val pe_temporal_level : int
val spatial_level : int
val dram_temporal_level : int

val name : int -> string
(** Display name of a canonical level index. *)

val trip_var : level:int -> dim:string -> string
(** The trip-count variable name shared by the symbolic formulation, the
    solver and the model, e.g. [trip_var ~level:1 ~dim:"h" = "t1.h"]. *)

val parse_trip_var : string -> (int * string) option
(** Inverse of {!trip_var}. *)
