(** Brute-force reference interpreter for tiled executions.

    This module re-derives data-movement volumes by {e walking the loop
    nest} that the mapping describes: for every tensor and every temporal
    tiling level, the copy into the storage below is placed at its hoist
    point (above every loop of the level absent from the tensor
    reference), the enclosing loops are literally iterated, and each copy's
    word count is obtained from interval arithmetic on the tensor's affine
    projections at the current loop indices.

    It shares no code with {!Accmodel.Counts} beyond the workload types,
    so agreement between the two is a meaningful correctness check.  Costs
    grow with the product of outer trip counts — use small nests. *)

type fill_report = {
  tensor : string;
  level : int;
  copies : int;  (** number of copy executions observed *)
  words : float;  (** total words transferred into the lower storage *)
}

val fills : Workload.Nest.t -> Mapspace.Mapping.t -> (fill_report list, string) result
(** One report per (tensor, temporal level >= 1) pair. *)

(** {2 Timed replay (DESIGN §16)} *)

type timing = {
  compute : float;  (** cycles on the used PEs, one MAC per PE per cycle *)
  channels : Archspec.Link.occupancy list;
      (** per-link occupancies in canonical order (dram-rd, dram-wr,
          noc-rd, noc-wr, reg), each derived by walking the copy
          schedule transfer by transfer with burst quantization *)
  cycles : float;
  binding : string;  (** the resource determining [cycles] *)
}

val timed :
  ?contention:bool ->
  Archspec.Technology.t ->
  Workload.Nest.t ->
  Mapspace.Mapping.t ->
  (timing, string) result
(** Replay the copy schedule against the technology's link parameters:
    every copy of every (tensor, boundary level) pair is charged to its
    link — level 1 to the NoC, level 3 to the DRAM interface, write-backs
    of read-write tensors mirrored onto the write direction — quantized
    up to whole bursts per copy, plus the per-PE register operand stream
    and the compute bound.  [contention] serializes the DRAM/NoC
    channels onto one fabric (their occupancies sum); the default
    overlaps everything, in which case the result agrees bit-for-bit
    with {!Accmodel}'s communication-aware evaluation.  Requires the
    canonical 4-level mapping.  Like {!fills}, the cost grows with the
    product of outer trip counts — use small nests. *)

val projection_span : extents:(string -> int) -> Workload.Nest.projection -> int
(** Footprint extent of one projection computed by enumerating every
    iterator combination inside the tile: [max index - min index + 1]. *)

val projection_distinct : extents:(string -> int) -> Workload.Nest.projection -> int
(** Number of {e distinct} addresses touched (always [<= projection_span];
    strictly fewer when strides leave gaps). *)
