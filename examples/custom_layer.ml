(* Bring your own layer: define a custom Conv2D, co-design an accelerator
   for it, and emit Timeloop-style specification files for the resulting
   design point — the toolchain handoff the paper's Fig. 2 describes.

   Run with:  dune exec examples/custom_layer.exe *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Evaluate = Accmodel.Evaluate

let () =
  let tech = Archspec.Technology.table3 in
  (* A depth-heavy 5x5 layer that none of the paper's pipelines contain. *)
  let layer =
    Workload.Conv.make ~name:"custom-5x5" ~batch:2 ~k:96 ~c:48 ~hw:32 ~rs:5 ()
  in
  let nest = Workload.Conv.to_nest layer in
  Format.printf "layer: %a@." Workload.Conv.pp layer;
  Format.printf "%a@.@." Workload.Nest.pp nest;

  (* Co-design under half the Eyeriss area. *)
  let area_budget = Archspec.Arch.eyeriss_area tech /. 2.0 in
  Printf.printf "co-designing under %.0f um^2...\n%!" area_budget;
  match O.codesign tech ~area_budget F.Energy nest with
  | Error msg -> Printf.printf "failed: %s\n" msg
  | Ok report ->
    let o = report.O.outcome in
    Format.printf "architecture: %a (area %.0f um^2)@." Archspec.Arch.pp o.I.arch
      (Archspec.Arch.area tech o.I.arch);
    Format.printf "mapping:@.%a@.@." Mapspace.Mapping.pp o.I.mapping;
    Format.printf "metrics:@.%a@.@." Evaluate.pp o.I.metrics;
    (* Emit the Timeloop-style bundle for external evaluation. *)
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "thistle-custom-layer" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Specs.Timeloop.write_bundle ~dir tech o.I.arch nest o.I.mapping;
    Printf.printf "wrote %s/{problem,mapping,arch}.yaml\n\n" dir;
    print_endline "mapping.yaml:";
    print_string (Specs.Yaml.emit (Specs.Timeloop.mapping_to_yaml o.I.mapping))
