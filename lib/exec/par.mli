(** Order-preserving, exception-safe parallel list combinators on the
    shared domain pool.

    Determinism contract: for any [jobs], [map]/[filter_map] return
    exactly the list the sequential [List.map]/[List.filter_map] would
    — same elements, same order.  [jobs <= 1] takes the exact sequential
    path (no pool involved); [jobs > 1] self-schedules the items over at
    most [jobs] lanes of the shared pool.  Results are collected into a
    pre-sized array by item index, so scheduling order never leaks into
    the output.

    Exception contract: every item's exception is caught on the worker;
    after the whole batch finishes, the exception of the {e smallest
    item index} is re-raised on the caller with its original backtrace
    (mirroring which failure sequential evaluation would have surfaced).
    Note the consequence: one crashing item discards the whole batch's
    results.  Callers that want per-item fault isolation instead wrap
    each item's body in [Robust.guard], which turns the crash into that
    item's own failure value (see DESIGN §11) — the optimizer's solve
    sweep and the pipeline's layer loop both do this.

    Nested calls (from inside a pool task) run sequentially — parallelism
    applies to the outermost loop only, which both bounds the domain
    count and makes the fallback trivially deterministic. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val shared_pool : jobs:int -> Pool.t
(** The process-wide pool, created on first use and grown to at least
    [jobs - 1] workers (the calling domain is the remaining lane).  It is
    registered with [at_exit] for an orderly shutdown. *)

val map : ?pool:Pool.t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed on up to [jobs] lanes
    (default {!default_jobs}).  [?pool] overrides the shared pool. *)

val filter_map : ?pool:Pool.t -> ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b list
(** [filter_map ~jobs f xs] is [List.filter_map f xs] under the same
    contract as {!map}. *)
