(** Posynomials: sums of monomials with positive coefficients.

    The representation is normalized: like terms (equal exponent vectors)
    are merged and terms are sorted, so structural equality is
    mathematical equality modulo floating-point rounding. *)

type t

val zero : t
(** The empty sum.  Not a valid GP posynomial by itself, but a convenient
    identity for [add]. *)

val of_monomial : Monomial.t -> t

val const : float -> t

val var : string -> t

val of_monomials : Monomial.t list -> t

val terms : t -> Monomial.t list
(** Sorted, like terms merged. *)

val is_zero : t -> bool

val is_monomial : t -> bool

val as_monomial : t -> Monomial.t option
(** [Some m] when the posynomial is a single monomial. *)

val add : t -> t -> t

val sum : t list -> t

val mul : t -> t -> t

val mul_monomial : Monomial.t -> t -> t

val div_monomial : t -> Monomial.t -> t
(** Posynomial divided by a monomial is a posynomial. *)

val scale : float -> t -> t
(** Raises [Invalid_argument] if the factor is not positive. *)

val bind : string -> float -> t -> t
(** Partial evaluation of one variable at a positive value; like terms are
    re-merged afterwards. *)

val eval : (string -> float) -> t -> float

val variables : t -> string list
(** Sorted, deduplicated. *)

val num_terms : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
