module M = Symexpr.Monomial
module P = Symexpr.Posynomial

type ctx = { provenance : string option; mutable diags : Diagnostic.t list }

let ctx ?provenance () = { provenance; diags = [] }

let diagnostics c = List.rev c.diags

let report c ?constraint_name fmt =
  Printf.ksprintf
    (fun message ->
      c.diags <-
        Diagnostic.error ~pass:"units" ?constraint_name ?provenance:c.provenance
          message
        :: c.diags)
    fmt

type mono = { m : M.t; mu : Units.t }

let mono u m = { m; mu = u }

let mconst u c = { m = M.const c; mu = u }

let mvar u x = { m = M.var x; mu = u }

let mmul a b = { m = M.mul a.m b.m; mu = Units.mul a.mu b.mu }

let mpow a e = { m = M.pow a.m e; mu = Units.pow a.mu e }

let mscale u c a = { m = M.scale c a.m; mu = Units.mul u a.mu }

let mbind x v a = { a with m = M.bind x v a.m }

let raw_mono a = a.m

let mono_unit a = a.mu

type t = { p : P.t; pu : Units.t }

let of_posynomial u p = { p; pu = u }

let of_mono a = { p = P.of_monomial a.m; pu = a.mu }

let add c ~what a b =
  if not (Units.equal a.pu b.pu) then
    report c "%s: adding %s to %s" what (Units.to_string a.pu)
      (Units.to_string b.pu);
  { p = P.add a.p b.p; pu = a.pu }

let sum c ~what u ts =
  List.iter
    (fun t ->
      if not (Units.equal u t.pu) then
        report c "%s: summing %s into %s" what (Units.to_string t.pu)
          (Units.to_string u))
    ts;
  { p = P.sum (List.map (fun t -> t.p) ts); pu = u }

let mul_mono a t = { p = P.mul_monomial a.m t.p; pu = Units.mul a.mu t.pu }

let scale u c t = { p = P.scale c t.p; pu = Units.mul u t.pu }

let bind x v t = { t with p = P.bind x v t.p }

let posy t = t.p

let unit_of t = t.pu

let le c ~name lhs rhs =
  if not (Units.equal lhs.pu rhs.mu) then
    report c ~constraint_name:name "left side is %s but the bound is %s"
      (Units.to_string lhs.pu) (Units.to_string rhs.mu);
  P.div_monomial lhs.p rhs.m

let eq c ~name lhs rhs =
  if not (Units.equal lhs.mu rhs.mu) then
    report c ~constraint_name:name "equating %s with %s"
      (Units.to_string lhs.mu) (Units.to_string rhs.mu);
  M.div lhs.m rhs.m

let objective c ~expected t =
  if not (Units.equal expected t.pu) then
    report c "objective: expected %s, got %s" (Units.to_string expected)
      (Units.to_string t.pu);
  t.p
