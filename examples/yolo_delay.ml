(* Throughput (delay) optimization for Yolo-9000 layers on the fixed
   Eyeriss architecture, compared against a Timeloop-Mapper-style random
   search with the same evaluation model (the paper's Fig. 7 setting).

   Run with:  dune exec examples/yolo_delay.exe *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module S = Mapper.Search
module Evaluate = Accmodel.Evaluate

let () =
  let tech = Archspec.Technology.table3 in
  let arch = Archspec.Arch.eyeriss in
  Printf.printf "architecture: %s (max IPC = %d)\n\n"
    (Format.asprintf "%a" Archspec.Arch.pp arch)
    arch.Archspec.Arch.pe_count;
  let layers =
    List.filter
      (fun l -> List.mem l.Workload.Conv.layer_name [ "yolo-2"; "yolo-5"; "yolo-7"; "yolo-9" ])
      Workload.Zoo.yolo9000
  in
  let mapper_config = { S.max_trials = 10000; victory_condition = 10000; seed = 7 } in
  Printf.printf "%-8s %12s %12s %9s\n" "layer" "mapper IPC" "thistle IPC" "speedup";
  List.iter
    (fun layer ->
      let nest = Workload.Conv.to_nest layer in
      let mapper = S.search ~config:mapper_config tech arch S.Min_delay nest in
      let mapper_ipc =
        match mapper.S.best with
        | Some (_, m) -> m.Evaluate.ipc
        | None -> nan
      in
      let config = { O.default_config with O.top_choices = 10 } in
      match O.dataflow ~config tech arch F.Delay nest with
      | Error msg ->
        Printf.printf "%-8s %12.2f %12s ! %s\n" layer.Workload.Conv.layer_name
          mapper_ipc "-" msg
      | Ok r ->
        let ipc = r.O.outcome.I.metrics.Evaluate.ipc in
        Printf.printf "%-8s %12.2f %12.2f %9.3f\n%!" layer.Workload.Conv.layer_name
          mapper_ipc ipc (ipc /. mapper_ipc))
    layers
