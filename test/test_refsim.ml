(* Tests for the reference simulator itself: enumerated footprints against
   the closed-form span formula, and sanity of the copy-counting walk. *)

module Nest = Workload.Nest
module Sim = Refsim.Simulate
module Mapping = Mapspace.Mapping

let idx ?(stride = 1) iter = { Nest.stride; iter }

let test_span_simple () =
  let extents = function "h" -> 4 | _ -> 3 in
  Alcotest.(check int) "single dim" 4 (Sim.projection_span ~extents [ idx "h" ]);
  (* h + r: 4 + 3 - 1 = 6; all addresses touched. *)
  Alcotest.(check int) "halo" 6 (Sim.projection_span ~extents [ idx "h"; idx "r" ]);
  Alcotest.(check int) "halo distinct" 6 (Sim.projection_distinct ~extents [ idx "h"; idx "r" ])

let test_span_strided () =
  let extents = function "w" -> 4 | _ -> 3 in
  (* 2w + s: span 2*4 + 3 - 2 = 9; distinct = 9 as stride 2 with window 3
     covers everything. *)
  Alcotest.(check int) "stride-2 span" 9
    (Sim.projection_span ~extents [ idx ~stride:2 "w"; idx "s" ]);
  Alcotest.(check int)
    "stride-2 distinct" 9
    (Sim.projection_distinct ~extents [ idx ~stride:2 "w"; idx "s" ])

let test_span_gaps () =
  (* 2w + s with window 1 leaves gaps: span 2*4 - 1 = 7, distinct 4. *)
  let extents = function "w" -> 4 | _ -> 1 in
  Alcotest.(check int) "gap span" 7
    (Sim.projection_span ~extents [ idx ~stride:2 "w"; idx "s" ]);
  Alcotest.(check int)
    "gap distinct" 4
    (Sim.projection_distinct ~extents [ idx ~stride:2 "w"; idx "s" ])

(* The closed-form footprint used by both models is the span:
   sum stride*extent - sum stride + 1. *)
let prop_span_closed_form =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 3) (pair (int_range 1 3) (int_range 1 5)))
  in
  QCheck2.Test.make ~name:"enumerated span = closed form" ~count:300 gen (fun spec ->
      let spec = List.mapi (fun i (s, e) -> (Printf.sprintf "d%d" i, s, e)) spec in
      let proj = List.map (fun (d, s, _) -> idx ~stride:s d) spec in
      let extents d =
        match List.find_opt (fun (d', _, _) -> d' = d) spec with
        | Some (_, _, e) -> e
        | None -> 1
      in
      let closed =
        List.fold_left (fun acc (_, s, e) -> acc + (s * e)) 0 spec
        - List.fold_left (fun acc (_, s, _) -> acc + s) 0 spec
        + 1
      in
      Sim.projection_span ~extents proj = closed)

let prop_distinct_le_span =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 3) (pair (int_range 1 3) (int_range 1 5)))
  in
  QCheck2.Test.make ~name:"distinct <= span; equal for stride 1" ~count:300 gen
    (fun spec ->
      let spec = List.mapi (fun i (s, e) -> (Printf.sprintf "d%d" i, s, e)) spec in
      let proj = List.map (fun (d, s, _) -> idx ~stride:s d) spec in
      let extents d =
        match List.find_opt (fun (d', _, _) -> d' = d) spec with
        | Some (_, _, e) -> e
        | None -> 1
      in
      let span = Sim.projection_span ~extents proj in
      let distinct = Sim.projection_distinct ~extents proj in
      distinct <= span
      && (List.exists (fun (_, s, _) -> s > 1) spec || distinct = span))

(* Copy counting: the number of copies observed must equal the product of
   the enclosing loops, with multicast skipping absent spatial dims. *)
let test_copy_counts () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 2) ], [ "i"; "j"; "k" ])
      ~pe:([ ("i", 2); ("k", 2) ], [ "i"; "j"; "k" ])
      ~spatial:[ ("j", 2) ]
      ~dram:([ ("i", 2); ("j", 2); ("k", 2) ], [ "i"; "j"; "k" ])
  in
  let reports = Result.get_ok (Sim.fills nest mapping) in
  let find tensor level =
    List.find (fun r -> r.Sim.tensor = tensor && r.Sim.level = level) reports
  in
  (* A at the PE level: PE perm <i,j,k> with k innermost present (factor
     2): copies once per PE-level i iteration (2); spatial has only j,
     absent in A (multicast, not iterated); all 8 DRAM iterations
     multiply: 2 * 8 = 16 copies. *)
  let a = find "A" 1 in
  Alcotest.(check int) "A copies" 16 a.Sim.copies;
  (* Each union copy is (i: 2) x (k: 2*2) = 8 words. *)
  Alcotest.(check (float 1e-9)) "A words" (16.0 *. 8.0) a.Sim.words;
  (* B is indexed by k and j; the spatial j loop iterates for it (x2). *)
  let b = find "B" 1 in
  Alcotest.(check int) "B copies" 32 b.Sim.copies

let () =
  Alcotest.run "refsim"
    [
      ( "footprints",
        [
          Alcotest.test_case "simple spans" `Quick test_span_simple;
          Alcotest.test_case "strided spans" `Quick test_span_strided;
          Alcotest.test_case "gappy strides" `Quick test_span_gaps;
        ] );
      ("copies", [ Alcotest.test_case "copy counts" `Quick test_copy_counts ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_span_closed_form; prop_distinct_le_span ] );
    ]
