(* Unit and property tests for the dense linear-algebra kernels backing
   the GP solver. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected actual)
    true (approx expected actual)

(* --- Vec --- *)

let test_vec_basics () =
  let x = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let y = Vec.of_list [ 4.0; 5.0; 6.0 ] in
  check_float "dot" 32.0 (Vec.dot x y);
  Alcotest.(check (list (float 1e-12))) "add" [ 5.0; 7.0; 9.0 ] (Vec.to_list (Vec.add x y));
  Alcotest.(check (list (float 1e-12))) "sub" [ -3.0; -3.0; -3.0 ] (Vec.to_list (Vec.sub x y));
  Alcotest.(check (list (float 1e-12)))
    "axpy" [ 6.0; 9.0; 12.0 ]
    (Vec.to_list (Vec.axpy 2.0 x y));
  check_float "norm2" (sqrt 14.0) (Vec.norm2 x);
  check_float "norm_inf" 3.0 (Vec.norm_inf x);
  check_float "max_elt" 3.0 (Vec.max_elt x)

let test_vec_slice_concat () =
  let x = Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (list (float 0.0))) "slice" [ 2.0; 3.0 ] (Vec.to_list (Vec.slice x 1 2));
  Alcotest.(check (list (float 0.0)))
    "concat" [ 1.0; 2.0; 3.0; 4.0; 9.0 ]
    (Vec.to_list (Vec.concat x [| 9.0 |]))

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* --- Mat --- *)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mul_vec () =
  let a = Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  Alcotest.(check (list (float 1e-12)))
    "mul_vec" [ 14.0; 32.0 ]
    (Vec.to_list (Mat.mul_vec a [| 1.0; 2.0; 3.0 |]));
  Alcotest.(check (list (float 1e-12)))
    "mul_trans_vec" [ 9.0; 12.0; 15.0 ]
    (Vec.to_list (Mat.mul_trans_vec a [| 1.0; 2.0 |]))

let test_lu_solve_known () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Mat.lu_solve a [| 3.0; 5.0 |] in
  check_float "x0" 0.8 x.(0);
  check_float "x1" 1.4 x.(1)

let test_lu_needs_pivoting () =
  (* Zero on the initial diagonal forces a row swap. *)
  let a = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Mat.lu_solve a [| 7.0; 9.0 |] in
  check_float "x0" 9.0 x.(0);
  check_float "x1" 7.0 x.(1)

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Mat.Singular (fun () ->
      ignore (Mat.lu_solve a [| 1.0; 1.0 |]))

let test_lu_factored_matches () =
  (* Same systems as the direct lu tests, via the factored path; the
     factorization is reused across two right-hand sides.  Equality is
     bitwise: the batched solver leans on lu_factor being a drop-in for
     lu_solve. *)
  let same name a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %h vs %h" name a b)
      true
      (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  in
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let lu = Mat.lu_factor a in
  Array.iter
    (fun b ->
      let x = Mat.lu_solve a b in
      let x' = Mat.lu_solve_factored lu b in
      same "x0" x.(0) x'.(0);
      same "x1" x.(1) x'.(1))
    [| [| 3.0; 5.0 |]; [| -1.0; 4.0 |] |];
  (* Zero on the initial diagonal forces a row swap. *)
  let p = Mat.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Mat.lu_solve_factored (Mat.lu_factor p) [| 7.0; 9.0 |] in
  check_float "swap x0" 9.0 x.(0);
  check_float "swap x1" 7.0 x.(1)

let test_lu_factor_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Mat.Singular (fun () -> ignore (Mat.lu_factor a))

let test_nullspace_basis () =
  (* One row in R^3: the basis must be orthonormal, orthogonal to the
     row, and of dimension 2; rank-deficient (duplicated) rows collapse
     to the same basis. *)
  let row = [| 1.0; 1.0; 0.0 |] in
  let z = Mat.nullspace_basis 3 [| row |] in
  Alcotest.(check int) "dim" 2 (Array.length z);
  Array.iter
    (fun v ->
      check_float "orthogonal to row" 0.0 (Vec.dot row v);
      check_float "unit norm" 1.0 (Vec.norm2 v))
    z;
  check_float "mutually orthogonal" 0.0 (Vec.dot z.(0) z.(1));
  let z2 = Mat.nullspace_basis 3 [| row; Vec.copy row |] in
  Alcotest.(check int) "rank-deficient dim" 2 (Array.length z2)

let test_cholesky_known () =
  let a = Mat.of_rows [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let l = Mat.cholesky a in
  check_float "l00" 2.0 (Mat.get l 0 0);
  check_float "l10" 1.0 (Mat.get l 1 0);
  check_float "l11" (sqrt 2.0) (Mat.get l 1 1);
  let x = Mat.solve_spd a [| 8.0; 7.0 |] in
  check_float "x0" 1.25 x.(0);
  check_float "x1" 1.5 x.(1)

let test_cholesky_not_pd () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD" Mat.Singular (fun () -> ignore (Mat.cholesky a))

let test_cholesky_in_place () =
  let a = Mat.of_rows [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  (* Stale data in the strict upper triangle must neither be read nor
     overwritten: solver workspaces refill only the lower triangle. *)
  let buf = Mat.of_rows [| [| 4.0; 99.0 |]; [| 2.0; 3.0 |] |] in
  Mat.cholesky_in_place buf;
  let l = Mat.cholesky a in
  check_float "l00" (Mat.get l 0 0) (Mat.get buf 0 0);
  check_float "l10" (Mat.get l 1 0) (Mat.get buf 1 0);
  check_float "l11" (Mat.get l 1 1) (Mat.get buf 1 1);
  check_float "upper untouched" 99.0 (Mat.get buf 0 1);
  let y = [| 8.0; 7.0 |] in
  Mat.cholesky_solve_in_place buf y;
  check_float "x0" 1.25 y.(0);
  check_float "x1" 1.5 y.(1)

let test_cholesky_refactor_reuse () =
  (* The same buffer factors a second matrix correctly after refilling
     only the lower triangle. *)
  let buf = Mat.create 2 2 in
  let load rows =
    for i = 0 to 1 do
      for j = 0 to i do
        Mat.set buf i j rows.(i).(j)
      done
    done
  in
  load [| [| 4.0; 0.0 |]; [| 2.0; 3.0 |] |];
  Mat.cholesky_in_place buf;
  load [| [| 9.0; 0.0 |]; [| 3.0; 5.0 |] |];
  Mat.cholesky_in_place buf;
  check_float "l00" 3.0 (Mat.get buf 0 0);
  check_float "l10" 1.0 (Mat.get buf 1 0);
  check_float "l11" 2.0 (Mat.get buf 1 1)

(* --- properties --- *)

let gen_system n =
  let open QCheck2.Gen in
  let entry = float_range (-2.0) 2.0 in
  let* rows = array_size (return n) (array_size (return n) entry) in
  let* x = array_size (return n) (float_range (-5.0) 5.0) in
  (* Diagonal dominance keeps the system comfortably non-singular. *)
  let a =
    Mat.init n n (fun i j ->
        rows.(i).(j) +. if i = j then 4.0 *. float_of_int n else 0.0)
  in
  return (a, x)

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu_solve recovers x from A x" ~count:200 (gen_system 5)
    (fun (a, x) ->
      let b = Mat.mul_vec a x in
      let x' = Mat.lu_solve a b in
      Vec.norm_inf (Vec.sub x x') < 1e-8)

let gen_spd n =
  let open QCheck2.Gen in
  let entry = float_range (-2.0) 2.0 in
  let* rows = array_size (return n) (array_size (return n) entry) in
  let b = Mat.init n n (fun i j -> rows.(i).(j)) in
  (* B^T B + I is symmetric positive definite. *)
  let a = Mat.add (Mat.mul (Mat.transpose b) b) (Mat.identity n) in
  let* x = array_size (return n) (float_range (-5.0) 5.0) in
  return (a, x)

let prop_lu_factored_bit_identical =
  QCheck2.Test.make ~name:"lu_solve_factored = lu_solve, bitwise" ~count:300
    (gen_system 5) (fun (a, x) ->
      let b = Mat.mul_vec a x in
      let direct = Mat.lu_solve a b in
      let factored = Mat.lu_solve_factored (Mat.lu_factor a) b in
      Array.for_all2
        (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
        direct factored)

let gen_pivoting_system n =
  (* Break diagonal dominance so partial pivoting actually swaps rows:
     the top-left entry is forced small. *)
  let open QCheck2.Gen in
  let* a, x = gen_system n in
  let a' = Mat.copy a in
  Mat.set a' 0 0 1e-3;
  return (a', x)

let prop_lu_factored_bit_identical_pivoting =
  QCheck2.Test.make ~name:"lu_solve_factored = lu_solve under pivoting" ~count:300
    (gen_pivoting_system 5) (fun (a, x) ->
      let b = Mat.mul_vec a x in
      match Mat.lu_solve a b with
      | direct ->
        let factored = Mat.lu_solve_factored (Mat.lu_factor a) b in
        Array.for_all2
          (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
          direct factored
      | exception Mat.Singular -> (
        match Mat.lu_factor a with
        | _ -> false
        | exception Mat.Singular -> true))

let prop_cholesky_roundtrip =
  QCheck2.Test.make ~name:"cholesky solve recovers x" ~count:200 (gen_spd 5)
    (fun (a, x) ->
      let b = Mat.mul_vec a x in
      let x' = Mat.solve_spd a b in
      Vec.norm_inf (Vec.sub x x') < 1e-7)

let prop_cholesky_factor =
  QCheck2.Test.make ~name:"L L^T = A" ~count:200 (gen_spd 4) (fun (a, _) ->
      let l = Mat.cholesky a in
      let llt = Mat.mul l (Mat.transpose l) in
      let ok = ref true in
      for i = 0 to 3 do
        for j = 0 to 3 do
          if Float.abs (Mat.get llt i j -. Mat.get a i j) > 1e-9 then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "slice/concat" `Quick test_vec_slice_concat;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "lu known" `Quick test_lu_solve_known;
          Alcotest.test_case "lu pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "lu singular" `Quick test_lu_singular;
          Alcotest.test_case "lu factored matches" `Quick test_lu_factored_matches;
          Alcotest.test_case "lu factor singular" `Quick test_lu_factor_singular;
          Alcotest.test_case "nullspace basis" `Quick test_nullspace_basis;
          Alcotest.test_case "cholesky known" `Quick test_cholesky_known;
          Alcotest.test_case "cholesky not PD" `Quick test_cholesky_not_pd;
          Alcotest.test_case "cholesky in place" `Quick test_cholesky_in_place;
          Alcotest.test_case "cholesky refactor reuse" `Quick test_cholesky_refactor_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lu_roundtrip;
            prop_lu_factored_bit_identical;
            prop_lu_factored_bit_identical_pivoting;
            prop_cholesky_roundtrip;
            prop_cholesky_factor;
          ] );
    ]
