type t = { bandwidth : float; burst_words : float; burst_overhead : float }

type set = { dram : t; noc : t; reg : t }

type comm_model = Overlapped | Comm_aware

let field_ok ~non_negative v =
  Float.is_finite v && (if non_negative then v >= 0.0 else v > 0.0)

let make ~bandwidth ~burst_words ~burst_overhead =
  if not (field_ok ~non_negative:false bandwidth) then
    invalid_arg "Link.make: bandwidth must be finite and positive";
  if not (field_ok ~non_negative:false burst_words) then
    invalid_arg "Link.make: burst_words must be finite and positive";
  if not (field_ok ~non_negative:true burst_overhead) then
    invalid_arg "Link.make: burst_overhead must be finite and non-negative";
  { bandwidth; burst_words; burst_overhead }

let busy t ~words ~bursts = (words /. t.bandwidth) +. (bursts *. t.burst_overhead)

let stream_busy t ~words = busy t ~words ~bursts:(words /. t.burst_words)

let cycles_per_word t =
  (1.0 /. t.bandwidth) +. (t.burst_overhead /. t.burst_words)

let comm_model_name = function Overlapped -> "overlapped" | Comm_aware -> "comm"

type occupancy = { chan : string; words : float; bursts : float; busy : float }

let occupancy chan t ~words ~bursts =
  { chan; words; bursts; busy = busy t ~words ~bursts }

let stream_occupancy chan t ~words =
  occupancy chan t ~words ~bursts:(words /. t.burst_words)

(* First-wins argmax: a later candidate displaces the current one only
   when strictly larger, so ties resolve to the earlier (canonical-order)
   name in the analytical model and the refsim alike. *)
let binding = function
  | [] -> "compute"
  | (n0, v0) :: rest ->
    let _, name =
      List.fold_left
        (fun (v, n) (n', v') -> if v' > v then (v', n') else (v, n))
        (v0, n0) rest
    in
    name

let comm_cycles ~contention ~compute ~shared ~reg =
  if contention then begin
    (* Serialized shared-bus bracket: every DRAM/NoC transfer contends for
       one fabric, in fixed left-fold order so the sum is reproducible. *)
    let bus = List.fold_left (fun acc o -> acc +. o.busy) 0.0 shared in
    let cycles = Float.max compute (Float.max bus reg.busy) in
    (cycles, binding [ ("compute", compute); ("bus", bus); (reg.chan, reg.busy) ])
  end
  else begin
    let occs = shared @ [ reg ] in
    let cycles = List.fold_left (fun acc o -> Float.max acc o.busy) compute occs in
    ( cycles,
      binding (("compute", compute) :: List.map (fun o -> (o.chan, o.busy)) occs)
    )
  end

let pp ppf t =
  Format.fprintf ppf "%g w/cyc, burst %g w + %g cyc" t.bandwidth t.burst_words
    t.burst_overhead
