type mode = Enforce | Warn | Off

exception Rejected of Diagnostic.t list

let mode_name = function Enforce -> "enforce" | Warn -> "warn" | Off -> "off"

let modes = [ ("enforce", Enforce); ("warn", Warn); ("off", Off) ]

let log_src = Logs.Src.create "thistle.lint" ~doc:"Thistle static-analysis gate"

module Log = (val Logs.src_log log_src : Logs.LOG)

let check_problem ?provenance problem = Discipline.check ?provenance problem

let log_all diags =
  List.iter (fun d -> Log.warn (fun m -> m "%a" Diagnostic.pp d)) diags

let gate mode diags =
  match mode with
  | Off -> ()
  | Warn -> log_all diags
  | Enforce -> (
    match Diagnostic.errors diags with
    | [] -> log_all diags
    | errs -> raise (Rejected errs))
