module P = Symexpr.Posynomial
module M = Symexpr.Monomial

type t = {
  objective : P.t;
  ineqs : (string * P.t) list;
  eqs : (string * M.t) list;
}

let make ~objective ?(ineqs = []) ?(eqs = []) () =
  if P.is_zero objective then invalid_arg "Gp.Problem.make: zero objective";
  List.iter
    (fun (name, p) ->
      if P.is_zero p then
        invalid_arg (Printf.sprintf "Gp.Problem.make: zero inequality %S" name))
    ineqs;
  { objective; ineqs; eqs }

let objective p = p.objective

let ineqs p = p.ineqs

let eqs p = p.eqs

let le p m = P.div_monomial p m

let le_const p c =
  if not (c > 0.0) then invalid_arg "Gp.Problem.le_const: bound must be positive";
  P.div_monomial p (M.const c)

let eq m1 m2 = M.div m1 m2

let variables prob =
  let of_ineq (_, p) = P.variables p in
  let of_eq (_, m) = M.variables m in
  List.sort_uniq String.compare
    (P.variables prob.objective
    @ List.concat_map of_ineq prob.ineqs
    @ List.concat_map of_eq prob.eqs)

let violations ?(tol = 1e-6) prob env =
  let ineq_violation (name, p) =
    let v = P.eval env p -. 1.0 in
    if v > tol then Some (name, v) else None
  in
  let eq_violation (name, m) =
    let v = Float.abs (log (M.eval env m)) in
    if v > tol then Some (name, v) else None
  in
  List.filter_map ineq_violation prob.ineqs
  @ List.filter_map eq_violation prob.eqs

let is_feasible ?tol prob env = violations ?tol prob env = []

let pp ppf prob =
  Format.fprintf ppf "@[<v>minimize %a" P.pp prob.objective;
  List.iter
    (fun (name, p) -> Format.fprintf ppf "@,s.t. [%s] %a <= 1" name P.pp p)
    prob.ineqs;
  List.iter
    (fun (name, m) -> Format.fprintf ppf "@,s.t. [%s] %a = 1" name M.pp m)
    prob.eqs;
  Format.fprintf ppf "@]"
