(** Interior-point solver for geometric programs.

    The problem is transformed to log space ([y = log t]), where the
    objective and inequality constraints become convex log-sum-exp
    functions and monomial equalities become affine equalities.  A
    standard two-phase barrier method then follows: phase I finds a
    strictly feasible point (or a certificate of infeasibility), phase II
    traces the central path with equality-constrained Newton steps.

    Three evaluation kernels back the same barrier driver:
    - [`Compiled] (the default): functions are compiled once into
      contiguous sparse exponent rows ({!Compiled}), evaluated into
      per-solve workspace buffers, and each Newton step solves the KKT
      system in an orthonormal nullspace basis of the equality rows —
      one in-place Cholesky factorization of the reduced Hessian
      instead of a dense [(n+p)^2] LU factorization, with the equality
      residual [A dy = 0] exact by construction.
    - [`List]: the original closure-per-function path with a dense
      [(n+p)^2] LU factorization per Newton step, kept as the reference
      and benchmark baseline.
    - [`Batched]: the compiled algorithm over a structure shared by a
      whole batch of coefficient-varying problems ({!Batch}, DESIGN
      §15): the lowering, the nullspace bases and the least-norm Gram
      factorization are computed once per {e structure} and reused by
      every batch member (and every warm-started retry), and the hot
      loops run over flat unchecked buffers.  Results are bit-for-bit
      equal to [`Compiled] — the amortized computations are pure and the
      per-step float operations are transcribed exactly.

    All kernels run the identical iteration schedule; the compiled
    kernel's function evaluations are bit-for-bit equal to the list
    kernel's (see {!Compiled}), while Newton directions may differ in
    low-order bits because the factorization differs.  [`Batched] and
    [`Compiled] agree bit-for-bit in full. *)

type status =
  | Optimal  (** converged to the requested duality-gap tolerance *)
  | Infeasible  (** phase I could not find a strictly feasible point *)
  | Iteration_limit
      (** progress stalled; the returned point is the best found and is
          feasible, but optimality is not certified *)
  | Deadline_exceeded
      (** the cooperative [?deadline_ns] budget ran out before the solve
          converged; [values] is empty and [objective] is [nan].  Counted
          in {!stats.deadline_hits} / {!totals.t_deadline_hits}. *)

type solution = {
  status : status;
  values : (string * float) list;
      (** variable assignment in the original (positive) space *)
  objective : float;  (** objective posynomial value at [values] *)
}

type kernel = [ `Compiled | `List | `Batched ]

val lookup : solution -> string -> float
(** Value of a variable in the solution.  Raises [Invalid_argument] with
    a message naming the missing variable (and the variables the solution
    does carry) if it does not occur — never a bare [Not_found]. *)

val env : solution -> string -> float
(** The solution as an evaluation environment.  Missing variables raise
    like {!lookup}. *)

(** {2 Telemetry}

    An optional mutable sink filled in by {!solve}.  The counters are
    pure functions of the problem (no timing enters them), so for a
    fixed problem they are identical run to run and independent of any
    parallelism around the solver. *)

type stats = {
  mutable phase1_outer : int;
      (** outer barrier iterations spent finding a strictly feasible
          point (0 when the equality-seeded start is already strictly
          feasible) *)
  mutable phase2_outer : int;  (** outer barrier iterations of the minimization *)
  mutable newton_iters : int;  (** Newton steps across both phases *)
  mutable backtracks : int;
      (** step-size backoffs: line-search halvings across all Newton
          steps *)
  mutable kkt_regularizations : int;
      (** extra regularization retries after a singular KKT system *)
  mutable cholesky_fallbacks : int;
      (** Newton steps where the structured Cholesky path failed at
          every regularization level and the dense LU path was tried
          instead; always 0 for the [`List] kernel *)
  mutable deadline_hits : int;
      (** 1 when this solve returned {!Deadline_exceeded}, else 0 *)
  mutable duality_gap : float;
      (** certified duality-gap bound [m / t] at the end of phase II;
          [0.0] for problems without inequalities, [nan] when phase II
          never ran (infeasible or inconsistent problems) *)
}

val fresh_stats : unit -> stats
(** All counters zero, [duality_gap = nan]. *)

val copy_stats : into:stats -> stats -> unit
(** [copy_stats ~into st] overwrites every field of [into] with the
    fields of [st] — used to replay a cached solve's telemetry. *)

type totals = {
  solves : int;
  t_phase1_outer : int;
  t_phase2_outer : int;
  t_newton_iters : int;
  t_backtracks : int;
  t_kkt_regularizations : int;
  t_cholesky_fallbacks : int;
  t_deadline_hits : int;
  max_duality_gap : float;  (** largest finite per-solve gap; [0.0] if none *)
}
(** Order-independent aggregation of per-solve {!stats} — summing is
    commutative, so accumulating in any schedule order yields the same
    totals. *)

val zero_totals : totals

val accumulate : totals -> stats -> totals

val pp_totals : Format.formatter -> totals -> unit

val solve :
  ?tol:float ->
  ?max_outer:int ->
  ?stats:stats ->
  ?warm_start:(string * float) list ->
  ?kernel:kernel ->
  ?deadline_ns:float ->
  ?initial_reg:float ->
  Problem.t ->
  solution
(** [solve problem] minimizes the problem objective.  [tol] bounds the
    final duality gap per inequality constraint (default 1e-8);
    [max_outer] bounds the number of barrier updates (default 60).
    When [stats] is given, its fields are overwritten with this solve's
    telemetry; passing it does not change the returned solution in any
    way.

    [deadline_ns] is a cooperative wall-clock budget for the whole
    solve, checked at outer-iteration boundaries (a single centering
    always runs to completion).  When it runs out the solve returns
    {!Deadline_exceeded} instead of raising.  A non-positive budget
    trips deterministically at the very first check, before any solver
    work — the fault-injection "stall" path relies on this.  With the
    default ([None]) no clock is ever read.

    [initial_reg] (default [1e-9]) is the starting KKT regularization of
    every Newton step's factorization ladder; the retry policy in
    {!Optimize} escalates it when re-running a solve that crashed or
    timed out.

    [warm_start] supplies a prior solution's positive-space values
    (e.g. [solution.values] from a structurally close problem); they
    seed the log-space start after projection onto this problem's
    equality manifold.  Non-positive or non-finite values are ignored.
    Warm starting changes only the iteration path, never feasibility or
    the optimum the solver converges to.

    [kernel] selects the evaluation/KKT strategy (default [`Compiled]);
    see the module preamble.  [`Batched] here solves a batch of one —
    callers holding a whole structure group use {!solve_batched} to
    amortize the per-structure work across members. *)

val solve_batched :
  ?tol:float ->
  ?max_outer:int ->
  ?stats:stats ->
  ?warm_start:(string * float) list ->
  ?deadline_ns:float ->
  ?initial_reg:float ->
  Batch.block ->
  int ->
  solution
(** [solve_batched block mem] solves member [mem] of a packed batch
    (see {!Batch.pack}) with the batched kernel.  All options behave as
    in {!solve}.  The returned solution, and the [stats] fields, are
    bit-for-bit identical to
    [solve ~kernel:`Compiled block.bk_members.(mem)] — batching changes
    where the structure work happens, never what is computed.  Each call
    owns its iteration workspace, so members of one block may be solved
    concurrently; a deadline or crash during one member's solve affects
    that member only.  Raises [Invalid_argument] if [mem] is out of
    range. *)
